//! Compact and pretty serialization of [`Value`] trees.

use crate::value::{Number, ToJson, Value};
use crate::Result;
use std::fmt::Write;

/// Serializes to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None, 0);
    Ok(out)
}

/// Serializes to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some("  "), 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: ToJson + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(v) => {
            if v.is_finite() {
                if v == v.trunc() && v.abs() < 1.0e16 {
                    // Keep float-ness visible, matching `{:?}`-style output
                    // (real serde_json prints 2.0 as "2.0").
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            } else {
                // Real serde_json refuses NaN/inf; emitting null is the
                // common lossy fallback and keeps serialization infallible.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::{json, to_string, to_string_pretty};

    #[test]
    fn compact() {
        let v = json!({"b": [1, 2.5, "x"], "a": null, "t": true});
        // Keys come out sorted (BTreeMap order).
        assert_eq!(to_string(&v).unwrap(), r#"{"a":null,"b":[1,2.5,"x"],"t":true}"#);
    }

    #[test]
    fn float_trailing_zero() {
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(2)).unwrap(), "2");
    }

    #[test]
    fn escaping() {
        assert_eq!(to_string(&json!("a\"b\\c\nd")).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn pretty() {
        let v = json!({"a": [1], "b": {}});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}"
        );
    }
}
