//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63, which made the crossbeam
//! version largely redundant). The API mirrors crossbeam's: spawn closures
//! receive a `&Scope` argument and `scope` returns a `Result` that is `Err`
//! when any spawned thread panicked.

pub mod thread {
    use std::any::Any;

    /// A handle to a scope in which threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope for spawning borrowed threads.
    ///
    /// Returns `Ok` with the closure's result when every spawned thread was
    /// joined (explicitly or at scope exit) without panicking. Panics from
    /// unjoined threads propagate out of `std::thread::scope` itself, so in
    /// practice joined-and-propagated errors surface through `join()`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }));
        result
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow() {
        let data = vec![1, 2, 3];
        let sums = super::thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<i32>());
            let h2 = s.spawn(|_| data.len());
            (h1.join().unwrap(), h2.join().unwrap())
        })
        .unwrap();
        assert_eq!(sums, (6, 3));
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom")).join().map(|_: ()| ()).is_err()
        });
        assert!(r.unwrap());
    }
}
