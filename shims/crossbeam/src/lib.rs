//! Offline stand-in for `crossbeam`.
//!
//! Two pieces are provided, implementing exactly the API surface this
//! workspace uses:
//!
//! - `crossbeam::thread::scope`, on top of `std::thread::scope` (stable since
//!   Rust 1.63, which made the crossbeam version largely redundant). The API
//!   mirrors crossbeam's: spawn closures receive a `&Scope` argument and
//!   `scope` returns a `Result` that is `Err` when any spawned thread
//!   panicked.
//! - `crossbeam::channel::unbounded`, a multi-producer multi-consumer FIFO
//!   channel on top of `std::sync::mpsc` with the receiver shared behind a
//!   mutex. Fairness differs from the real crossbeam (lock order decides
//!   which consumer wakes), but senders/receivers are cloneable and
//!   disconnect semantics match: `recv` errors once all senders are gone and
//!   the queue is drained.

pub mod thread {
    use std::any::Any;

    /// A handle to a scope in which threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope for spawning borrowed threads.
    ///
    /// Returns `Ok` with the closure's result when every spawned thread was
    /// joined (explicitly or at scope exit) without panicking. Panics from
    /// unjoined threads propagate out of `std::thread::scope` itself, so in
    /// practice joined-and-propagated errors surface through `join()`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }));
        result
    }
}

pub mod channel {
    //! Multi-producer multi-consumer unbounded FIFO channels.

    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// The receiving half of an unbounded channel. Cloneable: clones share
    /// one queue, so each message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    impl<T> Sender<T> {
        /// Queues a message, failing only when every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("channel receiver poisoned")
                .recv()
                .map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner
                .lock()
                .expect("channel receiver poisoned")
                .try_recv()
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow() {
        let data = vec![1, 2, 3];
        let sums = super::thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<i32>());
            let h2 = s.spawn(|_| data.len());
            (h1.join().unwrap(), h2.join().unwrap())
        })
        .unwrap();
        assert_eq!(sums, (6, 3));
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom")).join().map(|_: ()| ()).is_err()
        });
        assert!(r.unwrap());
    }

    #[test]
    fn channel_roundtrip_fifo() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn channel_multi_consumer_partitions_messages() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let (a, b) = super::thread::scope(|s| {
            let rx2 = rx.clone();
            let h1 = s.spawn(move |_| rx.iter().count());
            let h2 = s.spawn(move |_| rx2.iter().count());
            (h1.join().unwrap(), h2.join().unwrap())
        })
        .unwrap();
        assert_eq!(a + b, 100, "each message delivered to exactly one side");
    }

    #[test]
    fn channel_recv_errors_after_disconnect() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
        assert_eq!(
            rx.try_recv(),
            Err(super::channel::TryRecvError::Disconnected)
        );
    }

    #[test]
    fn channel_send_fails_without_receivers() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
