//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]`; nothing consumes the generated impls through serde's
//! trait machinery (all JSON values are built with `serde_json::json!` and
//! read back as dynamic `Value`s). These derives therefore accept the syntax
//! and expand to nothing, keeping the annotations compiling without pulling
//! in syn/quote or the real serde data model.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
